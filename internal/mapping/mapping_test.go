package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"across/internal/flash"
)

func TestPMTStartsUnmapped(t *testing.T) {
	pmt := NewPMT(8)
	if pmt.Len() != 8 {
		t.Fatalf("Len = %d, want 8", pmt.Len())
	}
	for lpn := int64(0); lpn < 8; lpn++ {
		if pmt.PPNOf(lpn) != flash.NilPPN {
			t.Fatalf("LPN %d mapped at start", lpn)
		}
		if pmt.AIdxOf(lpn) != NoAIdx {
			t.Fatalf("LPN %d has AIdx at start", lpn)
		}
	}
	if pmt.MappedPages() != 0 {
		t.Fatal("MappedPages != 0 at start")
	}
}

func TestPMTSetAndGet(t *testing.T) {
	pmt := NewPMT(4)
	if old := pmt.SetPPN(2, 100); old != flash.NilPPN {
		t.Fatalf("first SetPPN returned old=%d, want NilPPN", old)
	}
	if old := pmt.SetPPN(2, 200); old != 100 {
		t.Fatalf("second SetPPN returned old=%d, want 100", old)
	}
	pmt.SetAIdx(2, 5)
	e := pmt.Get(2)
	if e.PPN != 200 || e.AIdx != 5 {
		t.Fatalf("entry = %+v, want PPN 200 AIdx 5", e)
	}
	pmt.ClearAIdx(2)
	if pmt.AIdxOf(2) != NoAIdx {
		t.Fatal("ClearAIdx did not clear")
	}
	if pmt.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1", pmt.MappedPages())
	}
}

func TestPMTPanicsOutOfRange(t *testing.T) {
	pmt := NewPMT(2)
	for _, f := range []func(){
		func() { pmt.Get(2) },
		func() { pmt.Get(-1) },
		func() { pmt.SetPPN(99, 0) },
		func() { pmt.SetAIdx(-5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range LPN")
				}
			}()
			f()
		}()
	}
}

func TestAMTAllocGetUpdateFree(t *testing.T) {
	amt := NewAMT()
	e := AMTEntry{LPN: 128, Off: 8, Size: 12, APPN: 200}
	idx := amt.Alloc(e)
	if got := amt.Get(idx); got != e {
		t.Fatalf("Get = %+v, want %+v", got, e)
	}
	if e.End() != 20 {
		t.Fatalf("End = %d, want 20", e.End())
	}
	e2 := e
	e2.Size = 16
	e2.APPN = 300
	amt.Update(idx, e2)
	if got := amt.Get(idx); got != e2 {
		t.Fatalf("after Update, Get = %+v, want %+v", got, e2)
	}
	amt.SetAPPN(idx, 400)
	if got := amt.Get(idx).APPN; got != 400 {
		t.Fatalf("after SetAPPN, APPN = %d, want 400", got)
	}
	amt.Free(idx)
	if amt.InUse(idx) {
		t.Fatal("index still in use after Free")
	}
	if amt.Live() != 0 {
		t.Fatalf("Live = %d, want 0", amt.Live())
	}
}

func TestAMTRecyclesIndices(t *testing.T) {
	amt := NewAMT()
	a := amt.Alloc(AMTEntry{LPN: 1})
	b := amt.Alloc(AMTEntry{LPN: 2})
	amt.Free(a)
	c := amt.Alloc(AMTEntry{LPN: 3})
	if c != a {
		t.Fatalf("recycled index = %d, want %d", c, a)
	}
	if amt.Slots() != 2 {
		t.Fatalf("Slots = %d, want 2 (no growth on recycle)", amt.Slots())
	}
	if amt.Get(b).LPN != 2 || amt.Get(c).LPN != 3 {
		t.Fatal("entries corrupted by recycling")
	}
}

func TestAMTPeakTracksHighWaterMark(t *testing.T) {
	amt := NewAMT()
	a := amt.Alloc(AMTEntry{})
	amt.Alloc(AMTEntry{})
	amt.Free(a)
	amt.Alloc(AMTEntry{})
	if amt.Peak() != 2 {
		t.Fatalf("Peak = %d, want 2", amt.Peak())
	}
	if amt.Live() != 2 {
		t.Fatalf("Live = %d, want 2", amt.Live())
	}
}

func TestAMTPanicsOnDeadIndex(t *testing.T) {
	amt := NewAMT()
	idx := amt.Alloc(AMTEntry{})
	amt.Free(idx)
	for _, f := range []func(){
		func() { amt.Get(idx) },
		func() { amt.Update(idx, AMTEntry{}) },
		func() { amt.Free(idx) },
		func() { amt.Get(77) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on dead/invalid index")
				}
			}()
			f()
		}()
	}
}

func TestAMTAllocAt(t *testing.T) {
	amt := NewAMT()
	amt.AllocAt(5, AMTEntry{LPN: 50})
	if !amt.InUse(5) || amt.Get(5).LPN != 50 {
		t.Fatal("AllocAt(5) did not install")
	}
	if amt.Live() != 1 || amt.Slots() != 6 {
		t.Fatalf("Live=%d Slots=%d, want 1 and 6", amt.Live(), amt.Slots())
	}
	// Indices 0..4 were added to the free list; Alloc must reuse them
	// without colliding with 5.
	for i := 0; i < 5; i++ {
		idx := amt.Alloc(AMTEntry{LPN: int64(i)})
		if idx == 5 {
			t.Fatal("Alloc handed out a live index")
		}
	}
	if amt.Slots() != 6 {
		t.Fatalf("Slots = %d, want 6 (free list reused)", amt.Slots())
	}
	// AllocAt on a live index panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AllocAt on live index did not panic")
			}
		}()
		amt.AllocAt(5, AMTEntry{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AllocAt(-1) did not panic")
			}
		}()
		amt.AllocAt(-1, AMTEntry{})
	}()
}

func TestAMTAllocAtInterleavedWithFree(t *testing.T) {
	amt := NewAMT()
	a := amt.Alloc(AMTEntry{LPN: 1})
	amt.Free(a)
	amt.AllocAt(a, AMTEntry{LPN: 2}) // reuse the freed index explicitly
	if amt.Get(a).LPN != 2 {
		t.Fatal("AllocAt on freed index failed")
	}
	b := amt.Alloc(AMTEntry{LPN: 3})
	if b == a {
		t.Fatal("Alloc reused a live index after AllocAt")
	}
}

// Property: under random alloc/free/update traffic, the AMT behaves like a
// reference map from index to entry, and live/slot accounting stays exact.
func TestAMTMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		amt := NewAMT()
		ref := map[int32]AMTEntry{}
		for op := 0; op < 400; op++ {
			switch rng.Intn(3) {
			case 0:
				e := AMTEntry{LPN: rng.Int63n(1000), Off: int32(rng.Intn(16)),
					Size: int32(rng.Intn(16) + 1), APPN: flash.PPN(rng.Int63n(4096))}
				idx := amt.Alloc(e)
				if _, clash := ref[idx]; clash {
					return false // handed out a live index twice
				}
				ref[idx] = e
			case 1:
				for idx := range ref {
					e := ref[idx]
					e.APPN++
					amt.Update(idx, e)
					ref[idx] = e
					break
				}
			case 2:
				for idx := range ref {
					amt.Free(idx)
					delete(ref, idx)
					break
				}
			}
			if amt.Live() != len(ref) {
				return false
			}
			for idx, want := range ref {
				if !amt.InUse(idx) || amt.Get(idx) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

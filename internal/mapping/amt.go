package mapping

import (
	"fmt"

	"across/internal/flash"
)

// AMTEntry is one across-page area: the second level of Across-FTL's
// two-level mapping table (Fig 5). Off and Size are in sectors; Off is
// relative to the first byte of the area's first logical page, exactly as in
// the paper's worked example (write(1028K,6K) on an 8 KB page 1024K → Off=8,
// Size=12). LPN is the first of the two logical pages the area spans; the
// paper stores the equivalent back-reference in the page's OOB area.
type AMTEntry struct {
	LPN  int64     // first logical page of the across-page span
	Off  int32     // sector offset of the area within that page's address
	Size int32     // area length in sectors (0 < Size <= sectors per page)
	APPN flash.PPN // physical page holding the re-aligned data
}

// End returns the exclusive sector end of the area relative to the LPN base.
func (e AMTEntry) End() int32 { return e.Off + e.Size }

// AMT is the across-page mapping table: a growable pool of AMTEntry with
// index recycling. Entry indices are the AIdx values stored in the PMT, so
// they must remain stable for the lifetime of an area.
type AMT struct {
	entries []AMTEntry
	inUse   []bool
	free    []int32 // recycled indices
	live    int
	peak    int // high-water mark of live entries (sizing metric, Fig 12a)
}

// NewAMT creates an empty across-page mapping table.
func NewAMT() *AMT { return &AMT{} }

// Alloc stores a new area and returns its stable index.
func (a *AMT) Alloc(e AMTEntry) int32 {
	var idx int32
	if n := len(a.free); n > 0 {
		idx = a.free[n-1]
		a.free = a.free[:n-1]
		a.entries[idx] = e
		a.inUse[idx] = true
	} else {
		idx = int32(len(a.entries))
		a.entries = append(a.entries, e)
		a.inUse = append(a.inUse, true)
	}
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	return idx
}

// AllocAt installs an area at a specific index (growing the table as
// needed). Power-loss recovery uses it so indices match the AIdx keys burnt
// into the pages' OOB areas. It panics if the index is already live.
func (a *AMT) AllocAt(idx int32, e AMTEntry) {
	if idx < 0 {
		panic("mapping: AllocAt with negative index")
	}
	for int(idx) >= len(a.entries) {
		a.entries = append(a.entries, AMTEntry{})
		a.inUse = append(a.inUse, false)
		a.free = append(a.free, int32(len(a.entries)-1))
	}
	if a.inUse[idx] {
		panic("mapping: AllocAt on a live index")
	}
	// Remove idx from the free list.
	for i, f := range a.free {
		if f == idx {
			a.free = append(a.free[:i], a.free[i+1:]...)
			break
		}
	}
	a.entries[idx] = e
	a.inUse[idx] = true
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
}

func (a *AMT) check(idx int32) {
	if idx < 0 || int(idx) >= len(a.entries) || !a.inUse[idx] {
		panic(fmt.Sprintf("mapping: AMT index %d not in use", idx))
	}
}

// Get returns the area at a live index.
func (a *AMT) Get(idx int32) AMTEntry {
	a.check(idx)
	return a.entries[idx]
}

// Update replaces the area at a live index (AMerge moves Off/Size/APPN).
func (a *AMT) Update(idx int32, e AMTEntry) {
	a.check(idx)
	a.entries[idx] = e
}

// SetAPPN repoints a live area at a new physical page (GC migration).
func (a *AMT) SetAPPN(idx int32, ppn flash.PPN) {
	a.check(idx)
	a.entries[idx].APPN = ppn
}

// Free releases an index for reuse (ARollback clears the area).
func (a *AMT) Free(idx int32) {
	a.check(idx)
	a.inUse[idx] = false
	a.free = append(a.free, idx)
	a.live--
}

// InUse reports whether an index currently holds a live area.
func (a *AMT) InUse(idx int32) bool {
	return idx >= 0 && int(idx) < len(a.entries) && a.inUse[idx]
}

// Live returns the number of live areas.
func (a *AMT) Live() int { return a.live }

// Peak returns the high-water mark of live areas; Fig 12(a) sizes the AMT's
// memory contribution from it.
func (a *AMT) Peak() int { return a.peak }

// Slots returns the number of allocated slots (live + recycled).
func (a *AMT) Slots() int { return len(a.entries) }

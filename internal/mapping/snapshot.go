package mapping

import (
	"fmt"

	"across/internal/flash"
	"across/internal/snapshot"
)

// SnapshotState appends the full page mapping table as parallel PPN and
// AIdx columns.
func (t *PMT) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("pmt")
	ppns := make([]int64, len(t.entries))
	aidx := make([]int32, len(t.entries))
	for i, e := range t.entries {
		ppns[i] = int64(e.PPN)
		aidx[i] = e.AIdx
	}
	enc.I64s(ppns)
	enc.I32s(aidx)
	return nil
}

// RestoreState reads state written by SnapshotState into a PMT constructed
// for the same logical-page count.
func (t *PMT) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("pmt")
	ppns := dec.I64s()
	aidx := dec.I32s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(ppns) != len(t.entries) || len(aidx) != len(t.entries) {
		return fmt.Errorf("mapping: snapshot PMT has %d/%d entries, receiver has %d", len(ppns), len(aidx), len(t.entries))
	}
	for i := range t.entries {
		t.entries[i] = PMTEntry{PPN: flash.PPN(ppns[i]), AIdx: aidx[i]}
	}
	return nil
}

// SnapshotState appends the across-page mapping table: the entry pool as
// parallel columns, the in-use bitmap, the free list in exact order (indices
// are recycled pop-from-end, so order is observable), and the live/peak
// counters.
func (a *AMT) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("amt")
	lpns := make([]int64, len(a.entries))
	offs := make([]int32, len(a.entries))
	sizes := make([]int32, len(a.entries))
	appns := make([]int64, len(a.entries))
	inUse := make([]byte, len(a.entries))
	for i, e := range a.entries {
		lpns[i], offs[i], sizes[i] = e.LPN, e.Off, e.Size
		appns[i] = int64(e.APPN)
		if a.inUse[i] {
			inUse[i] = 1
		}
	}
	enc.I64s(lpns)
	enc.I32s(offs)
	enc.I32s(sizes)
	enc.I64s(appns)
	enc.Bytes(inUse)
	enc.I32s(a.free)
	enc.I64(int64(a.live))
	enc.I64(int64(a.peak))
	return nil
}

// RestoreState reads state written by SnapshotState, rebuilding the entry
// pool (the AMT grows by appending, so a fresh receiver starts empty).
func (a *AMT) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("amt")
	lpns := dec.I64s()
	offs := dec.I32s()
	sizes := dec.I32s()
	appns := dec.I64s()
	inUse := dec.Bytes()
	free := dec.I32s()
	live := dec.I64()
	peak := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	n := len(lpns)
	if len(offs) != n || len(sizes) != n || len(appns) != n || len(inUse) != n {
		return fmt.Errorf("mapping: snapshot AMT columns sized %d/%d/%d/%d/%d", n, len(offs), len(sizes), len(appns), len(inUse))
	}
	liveCount := 0
	for i, u := range inUse {
		if u > 1 {
			return fmt.Errorf("mapping: snapshot AMT in-use byte %d is %d", i, u)
		}
		if u == 1 {
			liveCount++
		}
	}
	if int64(liveCount) != live || live > peak || int64(len(free))+live != int64(n) {
		return fmt.Errorf("mapping: snapshot AMT accounting inconsistent (live %d, counted %d, peak %d, free %d, slots %d)",
			live, liveCount, peak, len(free), n)
	}
	for _, f := range free {
		if f < 0 || int(f) >= n || inUse[f] == 1 {
			return fmt.Errorf("mapping: snapshot AMT free index %d invalid", f)
		}
	}
	a.entries = make([]AMTEntry, n)
	a.inUse = make([]bool, n)
	for i := range a.entries {
		a.entries[i] = AMTEntry{LPN: lpns[i], Off: offs[i], Size: sizes[i], APPN: flash.PPN(appns[i])}
		a.inUse[i] = inUse[i] == 1
	}
	a.free = append([]int32(nil), free...)
	a.live = int(live)
	a.peak = int(peak)
	return nil
}

package obs

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeTracer exports events in the Chrome trace_event JSON format, which
// Perfetto and chrome://tracing open directly. Layout:
//
//   - one track (tid) per flash chip carrying the NAND command service
//     spans, named "chip N";
//   - one GC track (tid = chips) carrying collection spans and instant
//     victim markers;
//   - host requests as async spans (ph "b"/"e", id = request sequence), so
//     overlapping in-flight requests render in their own lanes;
//   - Across-FTL plan decisions as instant events on an "across" track.
//
// Cache accesses are deliberately not exported here — at one event per
// mapping touch they would dwarf the timeline; the JSONL tracer carries
// them for offline analysis.
//
// Timestamps are microseconds (Chrome's unit); the simulator's milliseconds
// are scaled by 1000 on the way out.
type ChromeTracer struct {
	w     *bufio.Writer
	chips int
	n     int // events written (comma placement)
	err   error
}

// Track layout after the per-chip tracks.
func (t *ChromeTracer) gcTID() int     { return t.chips }
func (t *ChromeTracer) acrossTID() int { return t.chips + 1 }

// NewChromeTracer starts a trace_event stream on w for a device with the
// given chip count, emitting the process/thread naming metadata first.
func NewChromeTracer(w io.Writer, chips int) *ChromeTracer {
	t := &ChromeTracer{w: bufio.NewWriterSize(w, 1<<16), chips: chips}
	t.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	t.meta("process_name", 0, `"name":"ssd"`)
	for c := 0; c < chips; c++ {
		t.meta("thread_name", c, fmt.Sprintf(`"name":"chip %d"`, c))
		t.meta("thread_sort_index", c, fmt.Sprintf(`"sort_index":%d`, c))
	}
	t.meta("thread_name", t.gcTID(), `"name":"GC"`)
	t.meta("thread_sort_index", t.gcTID(), fmt.Sprintf(`"sort_index":%d`, t.gcTID()))
	t.meta("thread_name", t.acrossTID(), `"name":"across"`)
	t.meta("thread_sort_index", t.acrossTID(), fmt.Sprintf(`"sort_index":%d`, t.acrossTID()))
	return t
}

func (t *ChromeTracer) raw(s string) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.WriteString(s)
}

// event writes one record, handling the comma separation of the JSON array.
func (t *ChromeTracer) event(format string, args ...any) {
	if t.err != nil {
		return
	}
	if t.n > 0 {
		t.raw(",\n")
	} else {
		t.raw("\n")
	}
	t.n++
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *ChromeTracer) meta(name string, tid int, args string) {
	t.event(`{"name":%q,"ph":"M","pid":0,"tid":%d,"args":{%s}}`, name, tid, args)
}

// us converts simulated milliseconds to trace microseconds.
func us(ms float64) float64 { return ms * 1000 }

// RequestStart implements Tracer: async span begin, one lane per in-flight
// request.
func (t *ChromeTracer) RequestStart(id int64, write bool, class uint8, offsetSectors, sectors int64, pages int, at float64) {
	name := "R"
	if write {
		name = "W"
	}
	t.event(`{"name":%q,"cat":"req","ph":"b","id":%d,"pid":0,"ts":%.3f,"args":{"class":%d,"offset":%d,"sectors":%d,"pages":%d}}`,
		name, id, us(at), class, offsetSectors, sectors, pages)
}

// RequestEnd implements Tracer: async span end.
func (t *ChromeTracer) RequestEnd(id int64, write bool, done float64) {
	name := "R"
	if write {
		name = "W"
	}
	t.event(`{"name":%q,"cat":"req","ph":"e","id":%d,"pid":0,"ts":%.3f}`, name, id, us(done))
}

// FlashOp implements Tracer: a complete event on the owning chip's track.
func (t *ChromeTracer) FlashOp(op FlashOpKind, class uint8, chip int, ppn int64, start, done float64) {
	t.event(`{"name":%q,"cat":%q,"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"ppn":%d}}`,
		op.String(), ClassName(class), chip, us(start), us(done-start), ppn)
}

// GCVictim implements Tracer: an instant marker on the GC track.
func (t *ChromeTracer) GCVictim(plane int, victim int64, validPages int, at float64) {
	t.event(`{"name":"victim","cat":"gc","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"args":{"plane":%d,"block":%d,"valid":%d}}`,
		t.gcTID(), us(at), plane, victim, validPages)
}

// GCSpan implements Tracer: a complete event on the GC track.
func (t *ChromeTracer) GCSpan(plane int, victims, migrated int, start, end float64) {
	t.event(`{"name":"gc plane %d","cat":"gc","ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"victims":%d,"migrated":%d}}`,
		plane, t.gcTID(), us(start), us(end-start), victims, migrated)
}

// AcrossEvent implements Tracer: an instant marker on the across track.
func (t *ChromeTracer) AcrossEvent(kind AcrossKind, startSector, sectors int64, at float64) {
	t.event(`{"name":%q,"cat":"across","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"args":{"offset":%d,"sectors":%d}}`,
		kind.String(), t.acrossTID(), us(at), startSector, sectors)
}

// CacheAccess implements Tracer: suppressed in the Chrome view (see the type
// comment); the JSONL tracer records these.
func (t *ChromeTracer) CacheAccess(kind CacheKind, hit bool, at float64) {}

// Flush implements Tracer: closes the JSON document and flushes.
func (t *ChromeTracer) Flush() error {
	t.raw("\n]}\n")
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

var _ Tracer = (*ChromeTracer)(nil)

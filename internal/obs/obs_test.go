package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// driveTracer emits one event of every kind.
func driveTracer(t Tracer) {
	t.RequestStart(0, true, 1, 128, 16, 2, 0.5)
	t.FlashOp(FlashRead, 1, 0, 42, 0.5, 0.54)
	t.FlashOp(FlashProgram, 1, 3, 99, 0.6, 1.26)
	t.GCVictim(2, 7, 3, 1.3)
	t.GCSpan(2, 1, 3, 1.3, 4.1)
	t.FlashOp(FlashErase, 3, 1, 512, 1.3, 4.1)
	t.AcrossEvent(AcrossMergeProfitable, 128, 32, 1.5)
	t.CacheAccess(CacheMapping, true, 1.6)
	t.CacheAccess(CacheHostData, false, 1.7)
	t.RequestEnd(0, true, 2.2)
}

// chromeDoc is the top-level trace_event document shape.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Cat  string          `json:"cat"`
		PID  int             `json:"pid"`
		TID  int             `json:"tid"`
		TS   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		ID   json.RawMessage `json:"id"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTracerProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	const chips = 4
	trc := NewChromeTracer(&buf, chips)
	driveTracer(trc)
	if err := trc.Flush(); err != nil {
		t.Fatal(err)
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}

	var threadNames []int
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threadNames = append(threadNames, ev.TID)
		}
		if ev.Ph == "X" && ev.Cat != "gc" && ev.TID >= chips {
			t.Errorf("flash op on tid %d, beyond the %d chip tracks", ev.TID, chips)
		}
	}
	// One track per chip plus the GC and across tracks.
	if len(threadNames) != chips+2 {
		t.Errorf("%d named threads, want %d (chips + GC + across)", len(threadNames), chips+2)
	}
	if counts["b"] != 1 || counts["e"] != 1 {
		t.Errorf("async request span b/e = %d/%d, want 1/1", counts["b"], counts["e"])
	}
	if counts["X"] != 4 { // read, program, erase, gc span
		t.Errorf("%d complete events, want 4", counts["X"])
	}
	if counts["i"] != 2 { // gc victim + across decision; cache accesses suppressed
		t.Errorf("%d instant events, want 2 (cache accesses must be suppressed)", counts["i"])
	}

	// Timestamps are microseconds: the 0.5 ms request start lands at ts=500.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "b" && ev.TS != 500 {
			t.Errorf("request start ts %v µs, want 500 (0.5 ms)", ev.TS)
		}
	}
}

func TestJSONLTracerLinesParse(t *testing.T) {
	var buf bytes.Buffer
	trc := NewJSONLTracer(&buf)
	driveTracer(trc)
	if err := trc.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines for 10 events", len(lines))
	}
	kinds := map[string]int{}
	for _, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad line %q: %v", ln, err)
		}
		kinds[ev.Ev]++
	}
	want := map[string]int{
		"req_start": 1, "req_end": 1, "flash": 3, "gc_victim": 1,
		"gc": 1, "across": 1, "cache": 2,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("%d %q events, want %d", kinds[k], k, n)
		}
	}
}

func TestOpenTraceSelectsFormatByExtension(t *testing.T) {
	dir := t.TempDir()

	jsonlPath := filepath.Join(dir, "run.jsonl")
	trc, closer, err := OpenTrace(jsonlPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trc.(*JSONLTracer); !ok {
		t.Errorf(".jsonl path opened a %T, want *JSONLTracer", trc)
	}
	driveTracer(trc)
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("closer did not flush the JSONL stream")
	}

	chromePath := filepath.Join(dir, "run.trace.json")
	trc, closer, err = OpenTrace(chromePath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trc.(*ChromeTracer); !ok {
		t.Errorf("non-jsonl path opened a %T, want *ChromeTracer", trc)
	}
	driveTracer(trc)
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Errorf("closer did not finalise the Chrome document: %v", err)
	}
}

func TestIsNop(t *testing.T) {
	if !IsNop(nil) || !IsNop(NopTracer()) || !IsNop(Nop{}) {
		t.Error("nil and Nop must both read as no-op")
	}
	if IsNop(NewJSONLTracer(&bytes.Buffer{})) {
		t.Error("a real tracer read as no-op")
	}
}

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("merges")
	if r.Counter("merges") != c {
		t.Error("re-registering a counter returned a new handle")
	}
	g := r.Gauge("frag")
	if r.Gauge("frag") != g {
		t.Error("re-registering a gauge returned a new handle")
	}
	c.Inc()
	c.Add(2)
	g.Set(0.5)
	g.Add(0.25)

	if got, want := strings.Join(r.Names(), ","), "merges,frag"; got != want {
		t.Errorf("names %q, want registration order %q", got, want)
	}
	snap := r.Snapshot(nil)
	if snap["merges"] != 3 || snap["frag"] != 0.75 {
		t.Errorf("snapshot %v, want merges=3 frag=0.75", snap)
	}
	// Reuse fills the caller's map.
	dst := map[string]float64{}
	if got := r.Snapshot(dst); &got == nil || dst["merges"] != 3 {
		t.Errorf("snapshot into dst gave %v", dst)
	}
}

func TestRegistryNameClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("x")
}

// fillConst returns a fill callback reporting a fixed busy-rate per chip, so
// interval busy fractions are predictable.
func fillConst(busyRate []float64) func(*Sample) {
	return func(sm *Sample) {
		sm.ChipBusyMs = make([]float64, len(busyRate))
		for i, r := range busyRate {
			sm.ChipBusyMs[i] = r * sm.TimeMs
		}
	}
}

func TestSamplerRejectsBadInterval(t *testing.T) {
	if _, err := NewSampler(0); err == nil {
		t.Error("interval 0 accepted")
	}
	if _, err := NewSampler(-5); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestSamplerGridAndWindows(t *testing.T) {
	s, err := NewSampler(10)
	if err != nil {
		t.Fatal(err)
	}
	fill := fillConst([]float64{0.5, 1.0})

	s.Tick(100, fill) // anchors the grid at 100; no sample
	if len(s.Samples()) != 0 {
		t.Fatalf("anchoring tick emitted %d samples", len(s.Samples()))
	}
	s.Note(false, 2)
	s.Note(false, 4)
	s.Note(true, 10)
	s.Tick(105, fill) // within the window
	if len(s.Samples()) != 0 {
		t.Fatal("mid-window tick emitted a sample")
	}
	s.Tick(112, fill) // crosses the 110 boundary
	if len(s.Samples()) != 1 {
		t.Fatalf("boundary tick emitted %d samples, want 1", len(s.Samples()))
	}
	sm := s.Samples()[0]
	if sm.TimeMs != 112 {
		t.Errorf("sample stamped %v, want the crossing event time 112", sm.TimeMs)
	}
	if sm.Requests != 3 || sm.ReadMeanMs != 3 || sm.WriteMeanMs != 10 {
		t.Errorf("window stats reqs=%d read=%v write=%v, want 3/3/10",
			sm.Requests, sm.ReadMeanMs, sm.WriteMeanMs)
	}
	// Busy fraction over (100,112]: chip 0 at rate 0.5 → 0.5; chip 1 clamped
	// from rate 1.0... but prevBusy at anchor was never recorded, so the
	// first window measures from zero busy; both clamp within [0,1].
	for i, f := range sm.ChipBusyFrac {
		if f < 0 || f > 1 {
			t.Errorf("chip %d busy fraction %v outside [0,1]", i, f)
		}
	}

	// A long quiet gap yields ONE coalesced sample at the ending event.
	s.Note(true, 1)
	s.Tick(191, fill)
	if n := len(s.Samples()); n != 2 {
		t.Fatalf("gap tick emitted %d cumulative samples, want 2 (coalesced)", n)
	}
	if got := s.Samples()[1]; got.TimeMs != 191 || got.Requests != 1 {
		t.Errorf("coalesced sample t=%v reqs=%d, want 191/1", got.TimeMs, got.Requests)
	}

	// Finish closes the series even off-grid; window counters were reset.
	s.Finish(195, fill)
	if n := len(s.Samples()); n != 3 {
		t.Fatalf("finish gave %d cumulative samples, want 3", n)
	}
	if got := s.Samples()[2]; got.TimeMs != 195 || got.Requests != 0 {
		t.Errorf("closing sample t=%v reqs=%d, want 195/0", got.TimeMs, got.Requests)
	}
	// Finish at a non-advancing time is a no-op.
	s.Finish(195, fill)
	if n := len(s.Samples()); n != 3 {
		t.Errorf("repeated finish emitted again (%d samples)", n)
	}
}

func TestSamplerBusyFractionDelta(t *testing.T) {
	s, err := NewSampler(10)
	if err != nil {
		t.Fatal(err)
	}
	fill := fillConst([]float64{0.25})
	s.Tick(0, fill)
	s.Tick(10, fill)
	s.Tick(20, fill)
	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("%d samples, want 2", len(samples))
	}
	// Second window: busy went 2.5 → 5.0 ms over a 10 ms window → 0.25.
	if f := samples[1].ChipBusyFrac[0]; math.Abs(f-0.25) > 1e-9 {
		t.Errorf("steady-state busy fraction %v, want 0.25", f)
	}
}

func TestSamplerRegistrySnapshot(t *testing.T) {
	s, err := NewSampler(10)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	merges := reg.Counter("merges")
	s.SetRegistry(reg)
	fill := func(sm *Sample) {}
	s.Tick(0, fill)
	merges.Add(7)
	s.Tick(10, fill)
	if got := s.Samples()[0].Custom["merges"]; got != 7 {
		t.Errorf("custom series snapshot %v, want 7", got)
	}
}

type failSink struct{}

func (failSink) WriteSample(*Sample) error { return os.ErrClosed }

func TestSamplerSinkErrorSticks(t *testing.T) {
	s, err := NewSampler(10)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSink(failSink{})
	fill := func(sm *Sample) {}
	s.Tick(0, fill)
	s.Tick(10, fill)
	if s.Err() == nil {
		t.Error("sink failure not surfaced via Err")
	}
	if len(s.Samples()) != 1 {
		t.Errorf("samples still retained in memory: got %d, want 1", len(s.Samples()))
	}
}

func TestJSONLMetricsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := NewJSONLMetrics(&buf)
	if err := m.WriteSample(&Sample{TimeMs: 5, CumRequests: 3, WAF: 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	var got Sample
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.TimeMs != 5 || got.CumRequests != 3 || got.WAF != 1.5 {
		t.Errorf("round trip gave %+v", got)
	}
}

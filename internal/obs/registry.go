package obs

// Counter is a monotonically growing int64 series handle. Handles are plain
// pointers so the instrumented hot path pays one inlined increment and zero
// allocations per update.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float64 series handle.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry names counters and gauges so the Sampler can snapshot them into
// every Sample's Custom map. Registration is idempotent (the same name
// returns the same handle), and a snapshot walks names in registration
// order so rendered series keep stable column order. The registry is not
// goroutine-safe — the simulator is single-threaded per replay; concurrent
// replays each own a registry.
type Registry struct {
	names    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.names = append(r.names, name)
	return c
}

// Gauge returns (registering on first use) the named gauge. A name may be
// either a counter or a gauge, not both; a clash panics (programming bug).
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, ok := r.counters[name]; ok {
		panic("obs: " + name + " is already registered as a counter")
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.names = append(r.names, name)
	return g
}

// Names lists registered series in registration order.
func (r *Registry) Names() []string { return r.names }

// IsCounter reports whether name is registered as a counter (false for
// gauges and unregistered names) — renderers use it to pick the exposition
// type.
func (r *Registry) IsCounter(name string) bool {
	_, ok := r.counters[name]
	return ok
}

// Snapshot copies every series' current value into dst (allocating it when
// nil) and returns it.
func (r *Registry) Snapshot(dst map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(r.names))
	}
	for _, n := range r.names {
		if c, ok := r.counters[n]; ok {
			dst[n] = float64(c.Value())
		} else {
			dst[n] = r.gauges[n].Value()
		}
	}
	return dst
}

package obs

import (
	"math"
	"strings"
	"testing"
)

func TestPromTextRendersFamilies(t *testing.T) {
	p := NewPromText()
	p.Counter("acrossd_jobs_submitted", "Jobs accepted.", 3)
	p.Counter("acrossd_errors_total", "Already suffixed.", 0)
	p.Gauge("acrossd_scheduler_queued", "Queued jobs.", 7)
	p.Gauge("acrossd_waf", "Write amplification.", 1.25)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := p.String()
	want := "# HELP acrossd_jobs_submitted_total Jobs accepted.\n" +
		"# TYPE acrossd_jobs_submitted_total counter\n" +
		"acrossd_jobs_submitted_total 3\n" +
		"# HELP acrossd_errors_total Already suffixed.\n" +
		"# TYPE acrossd_errors_total counter\n" +
		"acrossd_errors_total 0\n" +
		"# HELP acrossd_scheduler_queued Queued jobs.\n" +
		"# TYPE acrossd_scheduler_queued gauge\n" +
		"acrossd_scheduler_queued 7\n" +
		"# HELP acrossd_waf Write amplification.\n" +
		"# TYPE acrossd_waf gauge\n" +
		"acrossd_waf 1.25\n"
	if got != want {
		t.Errorf("rendered page:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateProm([]byte(got)); err != nil {
		t.Errorf("rendered page fails own validator: %v", err)
	}
}

func TestPromTextRejectsMalformed(t *testing.T) {
	p := NewPromText()
	p.Gauge("bad name", "spaces are not a metric name", 1)
	if p.Err() == nil {
		t.Error("invalid name accepted")
	}
	p = NewPromText()
	p.Gauge("twice", "", 1)
	p.Gauge("twice", "", 2)
	if p.Err() == nil {
		t.Error("duplicate family accepted")
	}
	// Counter/gauge clash on the rendered name is also a duplicate.
	p = NewPromText()
	p.Counter("clash", "", 1)
	p.Gauge("clash_total", "", 1)
	if p.Err() == nil {
		t.Error("counter/gauge name clash accepted")
	}
}

func TestPromTextHelpEscapingAndNonFinite(t *testing.T) {
	p := NewPromText()
	p.Gauge("g", "line one\nback\\slash", math.Inf(1))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := p.String()
	if !strings.Contains(got, `# HELP g line one\nback\\slash`) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, "g +Inf\n") {
		t.Errorf("+Inf not rendered:\n%s", got)
	}
	if err := ValidateProm([]byte(got)); err != nil {
		t.Errorf("escaped page fails validator: %v", err)
	}
}

func TestValidatePromAcceptsRealisticPage(t *testing.T) {
	page := `# HELP http_requests_total The total number of HTTP requests.
# TYPE http_requests_total counter
http_requests_total{method="post",code="200"} 1027 1395066363000
http_requests_total{method="post",code="400"}    3 1395066363000

# Escaping in label values:
msdos_file_access_time_seconds{path="C:\\DIR\\FILE.TXT",error="Cannot find file:\n\"FILE.TXT\""} 1.458255915e9

# Minimalistic line:
metric_without_timestamp_and_labels 12.47

# A weird metric from before the epoch:
something_weird{problem="division by zero"} +Inf -3982045

# A histogram, which has a pretty complex representation in the text format:
# HELP http_request_duration_seconds A histogram of the request duration.
# TYPE http_request_duration_seconds histogram
http_request_duration_seconds_bucket{le="0.05"} 24054
http_request_duration_seconds_bucket{le="+Inf"} 144320
http_request_duration_seconds_sum 53423
http_request_duration_seconds_count 144320
`
	if err := ValidateProm([]byte(page)); err != nil {
		t.Errorf("reference page rejected: %v", err)
	}
}

func TestValidatePromRejections(t *testing.T) {
	cases := []struct {
		name string
		page string
	}{
		{"empty", ""},
		{"json not prom", `{"counters":{"jobs":1}}`},
		{"bad value", "m notanumber\n"},
		{"bad name", "9metric 1\n"},
		{"double type", "# TYPE m counter\n# TYPE m counter\nm_total 1\nm 1\n"},
		{"type after sample", "m 1\n# TYPE m counter\n"},
		{"unknown type", "# TYPE m widget\nm 1\n"},
		{"interleaved families", "a 1\nb 1\na 2\n"},
		{"unterminated labels", "m{x=\"y\" 1\n"},
		{"typed but no samples", "# TYPE m counter\nother 1\n"},
		{"bad timestamp", "m 1 12.5\n"},
	}
	for _, tc := range cases {
		if err := ValidateProm([]byte(tc.page)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

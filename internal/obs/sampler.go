package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Sample is one periodic snapshot of the simulator's time-series metrics.
// Interval fields describe the window since the previous sample; Cum*
// fields are cumulative since the start of the measured phase, so the last
// sample of a replay reproduces the end-of-run Result aggregates.
type Sample struct {
	TimeMs float64 `json:"t_ms"`

	// Interval window (since the previous sample).
	Requests     int64   `json:"requests"`      // requests completed in the window
	ReadMeanMs   float64 `json:"read_mean_ms"`  // mean read latency in the window
	WriteMeanMs  float64 `json:"write_mean_ms"` // mean write latency in the window
	QueueDepth   int     `json:"queue_depth"`   // in-flight requests at sample time
	ChipBusyFrac []float64 `json:"chip_busy_frac"` // per-chip busy fraction over the window

	// Gauges at sample time.
	GCDebtPages int64   `json:"gc_debt_pages"` // pages below the per-plane GC thresholds
	WAF         float64 `json:"waf"`           // cumulative write amplification
	CMTHitRate  float64 `json:"cmt_hit_rate"`  // cumulative mapping-cache hit ratio

	// Cumulative aggregates (measured phase).
	ChipBusyMs          []float64 `json:"chip_busy_ms"`
	CumRequests         int64     `json:"cum_requests"`
	CumReads            int64     `json:"cum_reads"`
	CumWrites           int64     `json:"cum_writes"`
	CumReadLatSumMs     float64   `json:"cum_read_lat_sum_ms"`
	CumWriteLatSumMs    float64   `json:"cum_write_lat_sum_ms"`
	CumFlashReads       int64     `json:"cum_flash_reads"`
	CumFlashWrites      int64     `json:"cum_flash_writes"`
	CumErases           int64     `json:"cum_erases"`
	CumGCInvocations    int64     `json:"cum_gc_invocations"`
	CumHostPagesWritten int64     `json:"cum_host_pages_written"`

	// Custom carries the Sampler's Registry snapshot, if one is attached.
	Custom map[string]float64 `json:"custom,omitempty"`
}

// MetricsSink receives finished samples.
type MetricsSink interface {
	WriteSample(*Sample) error
}

// Sampler snapshots time-series metrics on a simulated-clock interval. The
// replay engine drives it: Note records each completed request, Tick is
// called with the advancing simulated clock and emits a sample whenever a
// boundary is crossed, and Finish emits the closing sample whose cumulative
// fields equal the end-of-run aggregates. The fill callback populates the
// gauge and cumulative fields from live simulator state; the Sampler owns
// the interval bookkeeping (window request counts, latency means, busy-
// fraction deltas).
type Sampler struct {
	interval float64
	sink     MetricsSink
	reg      *Registry

	samples []Sample
	started bool
	next    float64
	prevT   float64
	prevBusy []float64

	intReads, intWrites       int64
	intReadLat, intWriteLat   float64

	err error
}

// NewSampler builds a sampler with the given simulated-ms interval.
func NewSampler(intervalMs float64) (*Sampler, error) {
	if intervalMs <= 0 {
		return nil, fmt.Errorf("obs: sample interval %v ms must be positive", intervalMs)
	}
	return &Sampler{interval: intervalMs}, nil
}

// SetSink streams every sample to ms as it is taken (samples are always
// also retained in memory for Samples()).
func (s *Sampler) SetSink(ms MetricsSink) { s.sink = ms }

// SetRegistry attaches a custom-series registry snapshotted into every
// sample's Custom map.
func (s *Sampler) SetRegistry(r *Registry) { s.reg = r }

// Registry returns the attached registry (nil if none).
func (s *Sampler) Registry() *Registry { return s.reg }

// IntervalMs returns the sampling interval.
func (s *Sampler) IntervalMs() float64 { return s.interval }

// Samples returns the snapshots taken so far.
func (s *Sampler) Samples() []Sample { return s.samples }

// Err returns the first sink error, if any.
func (s *Sampler) Err() error { return s.err }

// Note records one completed request (direction and response time) into the
// current window.
func (s *Sampler) Note(write bool, latMs float64) {
	if write {
		s.intWrites++
		s.intWriteLat += latMs
	} else {
		s.intReads++
		s.intReadLat += latMs
	}
}

// Tick advances the simulated clock. The first call anchors the sampling
// grid; later calls emit one sample per crossed boundary (coalesced: a long
// quiet gap yields a single sample stamped at the event that ended it).
func (s *Sampler) Tick(now float64, fill func(*Sample)) {
	if !s.started {
		s.started = true
		s.prevT = now
		s.next = now + s.interval
		return
	}
	if now < s.next {
		return
	}
	s.emit(now, fill)
	for s.next <= now {
		s.next += s.interval
	}
}

// Finish emits the closing sample at the given time (typically the device
// idle horizon), so the series always ends with the run's final aggregates.
func (s *Sampler) Finish(now float64, fill func(*Sample)) {
	if now <= s.prevT && len(s.samples) > 0 {
		return
	}
	s.emit(now, fill)
}

func (s *Sampler) emit(now float64, fill func(*Sample)) {
	var sm Sample
	sm.TimeMs = now
	fill(&sm)
	sm.Requests = s.intReads + s.intWrites
	if s.intReads > 0 {
		sm.ReadMeanMs = s.intReadLat / float64(s.intReads)
	}
	if s.intWrites > 0 {
		sm.WriteMeanMs = s.intWriteLat / float64(s.intWrites)
	}
	if dt := now - s.prevT; dt > 0 && len(sm.ChipBusyMs) > 0 {
		sm.ChipBusyFrac = make([]float64, len(sm.ChipBusyMs))
		for i, b := range sm.ChipBusyMs {
			var prev float64
			if i < len(s.prevBusy) {
				prev = s.prevBusy[i]
			}
			f := (b - prev) / dt
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			sm.ChipBusyFrac[i] = f
		}
	} else {
		sm.ChipBusyFrac = make([]float64, len(sm.ChipBusyMs))
	}
	s.prevBusy = append(s.prevBusy[:0], sm.ChipBusyMs...)
	if s.reg != nil {
		sm.Custom = s.reg.Snapshot(nil)
	}
	s.prevT = now
	s.intReads, s.intWrites = 0, 0
	s.intReadLat, s.intWriteLat = 0, 0
	s.samples = append(s.samples, sm)
	if s.sink != nil {
		if err := s.sink.WriteSample(&s.samples[len(s.samples)-1]); err != nil && s.err == nil {
			s.err = err
		}
	}
}

// JSONLMetrics streams samples as one JSON object per line.
type JSONLMetrics struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLMetrics builds a JSONL metrics sink on w.
func NewJSONLMetrics(w io.Writer) *JSONLMetrics {
	bw := bufio.NewWriterSize(w, 1<<15)
	return &JSONLMetrics{w: bw, enc: json.NewEncoder(bw)}
}

// WriteSample implements MetricsSink.
func (m *JSONLMetrics) WriteSample(s *Sample) error { return m.enc.Encode(s) }

// Flush drains the buffer.
func (m *JSONLMetrics) Flush() error { return m.w.Flush() }

// OpenMetrics opens path as a JSONL metrics sink; the returned closer
// flushes and closes the file.
func OpenMetrics(path string) (*JSONLMetrics, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	m := NewJSONLMetrics(f)
	return m, &flushCloser{m: m, f: f}, nil
}

type flushCloser struct {
	m *JSONLMetrics
	f *os.File
}

func (fc *flushCloser) Close() error {
	ferr := fc.m.Flush()
	cerr := fc.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

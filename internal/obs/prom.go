package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromText accumulates metric families in the Prometheus text exposition
// format, version 0.0.4 — the format a Prometheus server scrapes from a
// /metrics endpoint. Each family is one # HELP line, one # TYPE line and one
// sample line; families render in the order they were added. The builder is
// not goroutine-safe: render one response per builder.
//
// Conventions are enforced at the render layer so callers cannot emit a
// malformed page: names must match the Prometheus data model, counters are
// suffixed _total when the caller has not done so already, and a name may
// not be emitted twice (duplicate TYPE lines are a scrape error).
type PromText struct {
	b    strings.Builder
	seen map[string]string // family name -> type
	err  error
}

// NewPromText builds an empty page.
func NewPromText() *PromText {
	return &PromText{seen: make(map[string]string)}
}

// Counter appends one counter family. The rendered name is suffixed _total
// unless name already ends with it.
func (p *PromText) Counter(name, help string, v float64) {
	if !strings.HasSuffix(name, "_total") {
		name += "_total"
	}
	p.family(name, help, "counter", v)
}

// Gauge appends one gauge family.
func (p *PromText) Gauge(name, help string, v float64) {
	p.family(name, help, "gauge", v)
}

func (p *PromText) family(name, help, typ string, v float64) {
	if p.err != nil {
		return
	}
	if !ValidPromName(name) {
		p.err = fmt.Errorf("obs: invalid metric name %q", name)
		return
	}
	if prev, dup := p.seen[name]; dup {
		p.err = fmt.Errorf("obs: metric %q emitted twice (first as %s)", name, prev)
		return
	}
	p.seen[name] = typ
	p.b.WriteString("# HELP ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(escapePromHelp(help))
	p.b.WriteString("\n# TYPE ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(typ)
	p.b.WriteByte('\n')
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(formatPromValue(v))
	p.b.WriteByte('\n')
}

// Err returns the first rendering error (nil when the page is well-formed).
func (p *PromText) Err() error { return p.err }

// WriteTo writes the rendered page.
func (p *PromText) WriteTo(w io.Writer) (int64, error) {
	if p.err != nil {
		return 0, p.err
	}
	n, err := io.WriteString(w, p.b.String())
	return int64(n), err
}

// String returns the rendered page.
func (p *PromText) String() string { return p.b.String() }

// ValidPromName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapePromHelp applies the format's HELP escaping: backslash and newline.
func escapePromHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatPromValue renders a sample value. Go's 'g' formatting of finite
// floats is accepted by the Prometheus parser; the three non-finite values
// have fixed spellings.
func formatPromValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promTypes are the metric types the 0.0.4 format defines.
var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ValidateProm checks that b parses as Prometheus text exposition format
// 0.0.4: well-formed HELP/TYPE comment lines, valid metric names, parseable
// sample values, at most one TYPE and one HELP per family, TYPE before the
// family's first sample, and contiguous families (the format forbids
// interleaving samples of different metrics). It returns the first violation
// with its 1-based line number. The service tests and the CI smoke validate
// the daemon's /metrics page with it.
func ValidateProm(b []byte) error {
	var (
		typed    = map[string]string{}
		helped   = map[string]bool{}
		sampled  = map[string]bool{}
		current  string // family of the sample group in progress
		nsamples int
	)
	lines := strings.Split(string(b), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !ValidPromName(fields[2]) {
					return fmt.Errorf("line %d: malformed HELP line %q", ln, line)
				}
				if helped[fields[2]] {
					return fmt.Errorf("line %d: second HELP for %q", ln, fields[2])
				}
				helped[fields[2]] = true
			case "TYPE":
				if len(fields) != 4 || !ValidPromName(fields[2]) {
					return fmt.Errorf("line %d: malformed TYPE line %q", ln, line)
				}
				name, typ := fields[2], fields[3]
				if !promTypes[typ] {
					return fmt.Errorf("line %d: unknown metric type %q", ln, typ)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: second TYPE for %q", ln, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", ln, name)
				}
				typed[name] = typ
			}
			continue
		}
		name, rest, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		fam := promFamily(name, typed)
		if fam != current && sampled[fam] {
			return fmt.Errorf("line %d: samples of %q are not contiguous", ln, fam)
		}
		current = fam
		sampled[fam] = true
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("line %d: want 'value [timestamp]' after name, got %q", ln, rest)
		}
		if _, err := parsePromValue(fields[0]); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", ln, fields[0])
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", ln, fields[1])
			}
		}
		nsamples++
	}
	if nsamples == 0 {
		return fmt.Errorf("no samples in page")
	}
	for name, typ := range typed {
		if !sampled[name] {
			return fmt.Errorf("family %q declared %s but has no samples", name, typ)
		}
	}
	return nil
}

// splitPromSample splits one sample line into its metric name and the
// remainder after the name and optional label block.
func splitPromSample(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != ' ' && line[i] != '{' {
		i++
	}
	name = line[:i]
	if !ValidPromName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := scanPromLabels(rest)
		if err != nil {
			return "", "", err
		}
		rest = rest[end:]
	}
	return name, strings.TrimLeft(rest, " "), nil
}

// scanPromLabels scans a {label="value",...} block (value escapes: \\ \" \n)
// and returns the index just past the closing brace.
func scanPromLabels(s string) (int, error) {
	inQuote, escaped := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("unterminated label block in %q", s)
}

// promFamily maps a sample name to its family: histogram and summary
// families own their _bucket/_sum/_count series.
func promFamily(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

// parsePromValue accepts what the exposition format does: Go float syntax
// plus the fixed spellings of the non-finite values.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "NaN", "+Inf", "-Inf", "Inf":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Event is the JSONL tracer's line schema: one object per event, with
// unused fields omitted. The Ev field discriminates:
// "req_start", "req_end", "flash", "gc_victim", "gc", "across", "cache".
type Event struct {
	Ev    string  `json:"ev"`
	T     float64 `json:"t_ms"`
	DurMs float64 `json:"dur_ms,omitempty"`

	ID      int64  `json:"id,omitempty"`      // request sequence number
	Write   bool   `json:"write,omitempty"`   // request direction
	Class   string `json:"class,omitempty"`   // alignment or op class
	Offset  int64  `json:"offset,omitempty"`  // sectors
	Sectors int64  `json:"sectors,omitempty"` // request length
	Pages   int    `json:"pages,omitempty"`   // split fan-out

	Op   string `json:"op,omitempty"` // flash command
	Chip int    `json:"chip,omitempty"`
	PPN  int64  `json:"ppn,omitempty"`

	Plane    int   `json:"plane,omitempty"`
	Block    int64 `json:"block,omitempty"`
	Valid    int   `json:"valid,omitempty"`
	Victims  int   `json:"victims,omitempty"`
	Migrated int   `json:"migrated,omitempty"`

	Kind  string `json:"kind,omitempty"`  // across decision or cache kind
	Hit   bool   `json:"hit,omitempty"`   // cache outcome
	Cache string `json:"cache,omitempty"` // cache kind
}

// JSONLTracer writes every event as one JSON object per line — the
// machine-readable sibling of the Chrome exporter, including the cache
// accesses the Chrome view suppresses.
type JSONLTracer struct {
	w   *bufio.Writer
	enc *json.Encoder
	ev  Event // reused per emission; Encode copies it out
	err error
}

// NewJSONLTracer starts a JSONL event stream on w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLTracer{w: bw, enc: json.NewEncoder(bw)}
}

func (t *JSONLTracer) emit() {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(&t.ev)
}

// RequestStart implements Tracer.
func (t *JSONLTracer) RequestStart(id int64, write bool, class uint8, offsetSectors, sectors int64, pages int, at float64) {
	t.ev = Event{Ev: "req_start", T: at, ID: id, Write: write,
		Class: reqClassName(class), Offset: offsetSectors, Sectors: sectors, Pages: pages}
	t.emit()
}

// RequestEnd implements Tracer.
func (t *JSONLTracer) RequestEnd(id int64, write bool, done float64) {
	t.ev = Event{Ev: "req_end", T: done, ID: id, Write: write}
	t.emit()
}

// FlashOp implements Tracer.
func (t *JSONLTracer) FlashOp(op FlashOpKind, class uint8, chip int, ppn int64, start, done float64) {
	t.ev = Event{Ev: "flash", T: start, DurMs: done - start,
		Op: op.String(), Class: ClassName(class), Chip: chip, PPN: ppn}
	t.emit()
}

// GCVictim implements Tracer.
func (t *JSONLTracer) GCVictim(plane int, victim int64, validPages int, at float64) {
	t.ev = Event{Ev: "gc_victim", T: at, Plane: plane, Block: victim, Valid: validPages}
	t.emit()
}

// GCSpan implements Tracer.
func (t *JSONLTracer) GCSpan(plane int, victims, migrated int, start, end float64) {
	t.ev = Event{Ev: "gc", T: start, DurMs: end - start,
		Plane: plane, Victims: victims, Migrated: migrated}
	t.emit()
}

// AcrossEvent implements Tracer.
func (t *JSONLTracer) AcrossEvent(kind AcrossKind, startSector, sectors int64, at float64) {
	t.ev = Event{Ev: "across", T: at, Kind: kind.String(), Offset: startSector, Sectors: sectors}
	t.emit()
}

// CacheAccess implements Tracer.
func (t *JSONLTracer) CacheAccess(kind CacheKind, hit bool, at float64) {
	t.ev = Event{Ev: "cache", T: at, Cache: kind.String(), Hit: hit}
	t.emit()
}

// Flush implements Tracer.
func (t *JSONLTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// reqClassName renders the trace.Class numbering (aligned / across /
// unaligned) without importing the trace package.
func reqClassName(c uint8) string {
	switch c {
	case 0:
		return "aligned"
	case 1:
		return "across"
	case 2:
		return "unaligned"
	}
	return ClassName(c)
}

var _ Tracer = (*JSONLTracer)(nil)

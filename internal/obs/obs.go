// Package obs is the simulator's observability layer: a pluggable event
// tracer with span-style events for every interesting simulator transition
// (request arrival/completion, flash program/read/erase service spans,
// garbage-collection spans with their victims, Across-FTL plan decisions,
// mapping-cache and host-cache hits/misses), a counters+gauges registry for
// scheme- or experiment-specific series, and a periodic Sampler that
// snapshots time-series metrics on a simulated-clock interval.
//
// Three sinks ship with the package:
//
//   - the no-op tracer (the default: a nil Tracer on every component), whose
//     emission guards compile to a single predictable branch so the replay
//     hot path stays allocation-free and within its overhead budget;
//   - a JSONL writer (NewJSONLTracer) that records every event as one JSON
//     object per line, for ad-hoc analysis with jq or a notebook;
//   - a Chrome trace_event exporter (NewChromeTracer) whose output opens
//     directly in Perfetto / chrome://tracing with one track per flash chip
//     plus a GC track and async request spans.
//
// All timestamps are simulated milliseconds (the clock package's unit).
// Emission must never mutate simulator state: a traced replay is required to
// produce a bit-identical Result to an untraced one (locked in by
// internal/sim's differential tests).
package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// FlashOpKind discriminates the three NAND commands.
type FlashOpKind uint8

const (
	// FlashRead is a page read (cell sensing on the owning chip).
	FlashRead FlashOpKind = iota
	// FlashProgram is a page program.
	FlashProgram
	// FlashErase is a block erase.
	FlashErase
)

// String implements fmt.Stringer.
func (k FlashOpKind) String() string {
	switch k {
	case FlashRead:
		return "read"
	case FlashProgram:
		return "program"
	case FlashErase:
		return "erase"
	}
	return fmt.Sprintf("FlashOpKind(%d)", uint8(k))
}

// Op classes mirror ftl.OpClass (data / map / gc) without importing ftl;
// ClassName renders the uint8 the Device passes through.
const (
	ClassData uint8 = iota
	ClassMap
	ClassGC
)

// ClassName renders an op-class byte for sinks.
func ClassName(c uint8) string {
	switch c {
	case ClassData:
		return "data"
	case ClassMap:
		return "map"
	case ClassGC:
		return "gc"
	}
	return fmt.Sprintf("class(%d)", c)
}

// AcrossKind labels the Across-FTL write/read-path decisions of §3.3.
type AcrossKind uint8

const (
	// AcrossDirect is a first-time across-page write into a fresh area.
	AcrossDirect AcrossKind = iota
	// AcrossMergeProfitable is an AMerge triggered by an across-page write.
	AcrossMergeProfitable
	// AcrossMergeUnprofitable is an AMerge triggered by any other write.
	AcrossMergeUnprofitable
	// AcrossRollback is an area dissolved back into normal pages.
	AcrossRollback
	// AcrossSupersede is an area dropped because an update fully covered it.
	AcrossSupersede
	// AcrossDirectRead is an across read served from one area page.
	AcrossDirectRead
	// AcrossMergedRead is an across read needing area + normal pages.
	AcrossMergedRead
)

// String implements fmt.Stringer.
func (k AcrossKind) String() string {
	switch k {
	case AcrossDirect:
		return "direct"
	case AcrossMergeProfitable:
		return "amerge-profitable"
	case AcrossMergeUnprofitable:
		return "amerge-unprofitable"
	case AcrossRollback:
		return "arollback"
	case AcrossSupersede:
		return "supersede"
	case AcrossDirectRead:
		return "direct-read"
	case AcrossMergedRead:
		return "merged-read"
	}
	return fmt.Sprintf("AcrossKind(%d)", uint8(k))
}

// CacheKind labels which cache an access event belongs to.
type CacheKind uint8

const (
	// CacheMapping is a cached-mapping-table (CMT) translation access —
	// Across-FTL's AMT cache, MRSM's tree-node cache, DFTL's page cache.
	CacheMapping CacheKind = iota
	// CacheHostData is the host DRAM data buffer (hostcache package).
	CacheHostData
)

// String implements fmt.Stringer.
func (k CacheKind) String() string {
	switch k {
	case CacheMapping:
		return "cmt"
	case CacheHostData:
		return "hostdata"
	}
	return fmt.Sprintf("CacheKind(%d)", uint8(k))
}

// Tracer receives simulator events. Implementations must not block the
// simulation semantics: events are notifications, never control flow. Every
// method takes only scalar arguments so that a call through the interface
// performs no allocation — the contract the no-op overhead tests enforce.
//
// Components hold a nil Tracer when tracing is off and guard each emission
// with a nil check, so the disabled cost is one branch.
type Tracer interface {
	// RequestStart opens the span of host request id (sequence number within
	// the replay): direction, alignment class (trace.Class numbering),
	// sector extent, the page fan-out of its split, and the arrival time.
	RequestStart(id int64, write bool, class uint8, offsetSectors, sectors int64, pages int, at float64)
	// RequestEnd closes a request span at its completion time.
	RequestEnd(id int64, write bool, done float64)
	// FlashOp records one NAND command's service span on its chip:
	// [start, done) is the chip-occupancy interval (excluding bus transfer).
	FlashOp(op FlashOpKind, class uint8, chip int, ppn int64, start, done float64)
	// GCVictim records one victim selection (block id and its live pages).
	GCVictim(plane int, victim int64, validPages int, at float64)
	// GCSpan records one garbage-collection invocation: victims processed,
	// valid pages migrated, and the [start, end) interval the collection
	// occupies on the plane's chip.
	GCSpan(plane int, victims, migrated int, start, end float64)
	// AcrossEvent records an Across-FTL plan decision over the request's
	// sector window.
	AcrossEvent(kind AcrossKind, startSector, sectors int64, at float64)
	// CacheAccess records a mapping-cache or host-data-cache access.
	CacheAccess(kind CacheKind, hit bool, at float64)
	// Flush finalises the sink (writes trailers, flushes buffers). The
	// tracer must not be used afterwards.
	Flush() error
}

// OpenTrace opens path and builds the tracer its extension selects:
// ".jsonl" gets the line-oriented event writer, anything else the Chrome
// trace_event exporter (which needs the chip count for its track metadata).
// Closing the returned io.Closer flushes the tracer (writing any format
// trailer) and closes the file; the tracer must not be used afterwards.
func OpenTrace(path string, chips int) (Tracer, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var t Tracer
	if strings.HasSuffix(path, ".jsonl") {
		t = NewJSONLTracer(f)
	} else {
		t = NewChromeTracer(f, chips)
	}
	return t, &traceCloser{t: t, f: f}, nil
}

type traceCloser struct {
	t Tracer
	f *os.File
}

func (tc *traceCloser) Close() error {
	ferr := tc.t.Flush()
	cerr := tc.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

package obs

// Nop is the no-op Tracer: every method is an empty body and every Tracer
// method takes scalars only, so an installed Nop allocates nothing.
// Emission hosts (the device and the replay engine) recognise it via IsNop
// and normalise it to a nil tracer at installation, so "tracing off" costs
// one predictable branch per event site rather than a dynamic interface
// call — installing a Nop is exactly as cheap as installing nil.
type Nop struct{}

// NopTracer returns the shared no-op tracer.
func NopTracer() Tracer { return nopShared }

var nopShared Tracer = Nop{}

// IsNop reports whether t is the no-op tracer (or nil). Callers that emit
// on a hot path should normalise no-op tracers to nil when the tracer is
// installed, keeping the per-event disabled cost to a nil check.
func IsNop(t Tracer) bool {
	if t == nil {
		return true
	}
	_, ok := t.(Nop)
	return ok
}

// RequestStart implements Tracer.
func (Nop) RequestStart(id int64, write bool, class uint8, offsetSectors, sectors int64, pages int, at float64) {
}

// RequestEnd implements Tracer.
func (Nop) RequestEnd(id int64, write bool, done float64) {}

// FlashOp implements Tracer.
func (Nop) FlashOp(op FlashOpKind, class uint8, chip int, ppn int64, start, done float64) {}

// GCVictim implements Tracer.
func (Nop) GCVictim(plane int, victim int64, validPages int, at float64) {}

// GCSpan implements Tracer.
func (Nop) GCSpan(plane int, victims, migrated int, start, end float64) {}

// AcrossEvent implements Tracer.
func (Nop) AcrossEvent(kind AcrossKind, startSector, sectors int64, at float64) {}

// CacheAccess implements Tracer.
func (Nop) CacheAccess(kind CacheKind, hit bool, at float64) {}

// Flush implements Tracer.
func (Nop) Flush() error { return nil }

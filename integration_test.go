package across_test

// End-to-end integration tests: the workflows a user of the repository
// actually runs, wired through the public API — trace files on disk,
// multi-phase replays on one aged device, multi-tenant consolidation, and
// full-harness regeneration — with cross-scheme consistency checks.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"across"
)

func integConfig() across.Config {
	c := across.Table1Config()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

// TestTraceFileWorkflow exercises the acrosssim/tracegen workflow: generate
// a trace, write it to disk in SYSTOR format, read it back, replay it.
func TestTraceFileWorkflow(t *testing.T) {
	cfg := integConfig()
	prof, err := across.Profile("lun4")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := across.GenerateTrace(prof.Scale(0.003), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "lun4.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := across.WriteTrace(f, 4, reqs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	loaded, err := across.ReadTrace(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(reqs) {
		t.Fatalf("file round trip lost requests: %d != %d", len(loaded), len(reqs))
	}

	// The loaded trace replays identically to the in-memory one (times are
	// microsecond-rounded by the CSV, so compare op counts, not latencies).
	resA, err := across.Run(across.AcrossFTL, cfg, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := across.Run(across.AcrossFTL, cfg, loaded, true)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Counters.FlashWrites() != resB.Counters.FlashWrites() {
		t.Errorf("flash writes differ after file round trip: %d vs %d",
			resA.Counters.FlashWrites(), resB.Counters.FlashWrites())
	}
	if resA.Counters.Erases != resB.Counters.Erases {
		t.Errorf("erases differ after file round trip: %d vs %d",
			resA.Counters.Erases, resB.Counters.Erases)
	}
}

// TestMultiPhaseReplayOnOneDevice ages one device and replays three trace
// segments back to back, as a long-running study would; state must carry
// over while metrics reset per phase.
func TestMultiPhaseReplayOnOneDevice(t *testing.T) {
	cfg := integConfig()
	r, err := across.NewRunner(across.AcrossFTL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := across.Profile("lun5")
	full, err := across.GenerateTrace(prof.Scale(0.006), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	span := full[len(full)-1].Time
	third := span / 3
	segments := [][]across.Request{
		across.WindowTrace(full, 0, third),
		across.WindowTrace(full, third, 2*third),
		across.WindowTrace(full, 2*third, span+1),
	}
	var total int64
	for i, seg := range segments {
		res, err := r.Replay(seg)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if res.Requests != int64(len(seg)) {
			t.Fatalf("segment %d lost requests", i)
		}
		total += res.Requests
	}
	if total != int64(len(full)) {
		t.Fatalf("segments covered %d of %d requests", total, len(full))
	}
}

// TestCrossSchemeDataConsistency replays one trace on all four schemes and
// checks the inter-scheme invariants that must hold regardless of tuning.
func TestCrossSchemeDataConsistency(t *testing.T) {
	cfg := integConfig()
	prof, _ := across.Profile("lun2")
	reqs, err := across.GenerateTrace(prof.Scale(0.004), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	kinds := append(across.Schemes(), across.DFTL)
	results := map[across.Scheme]*across.Result{}
	for _, k := range kinds {
		res, err := across.Run(k, cfg, reqs, true)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		results[k] = res
		// Universal sanity: every scheme serviced every request.
		if res.Requests != int64(len(reqs)) {
			t.Errorf("%s: %d of %d requests", k, res.Requests, len(reqs))
		}
		if res.Counters.FlashWrites() == 0 {
			t.Errorf("%s: no flash writes", k)
		}
	}
	// DFTL's data path equals the baseline's; only map traffic differs.
	ftlRes, dftlRes := results[across.BaselineFTL], results[across.DFTL]
	if dftlRes.Counters.DataWrites != ftlRes.Counters.DataWrites {
		t.Errorf("DFTL data writes %d != FTL %d (data paths must match)",
			dftlRes.Counters.DataWrites, ftlRes.Counters.DataWrites)
	}
	if dftlRes.Counters.MapWrites == 0 {
		t.Error("DFTL produced no map writes on an aged device")
	}
}

// TestHarnessEndToEndMarkdown runs two artifacts through the public API in
// markdown mode, as the EXPERIMENTS.md regeneration workflow does.
func TestHarnessEndToEndMarkdown(t *testing.T) {
	cfg := across.ExperimentConfigDefaults()
	cfg.SSD = integConfig()
	cfg.Scale = 0.002
	cfg.CollectionSize = 4
	cfg.Format = "markdown"
	var buf bytes.Buffer
	for _, id := range []string{"table2", "fig13"} {
		if err := across.RunExperiment(id, cfg, &buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "|---|") {
		t.Errorf("markdown table markers missing:\n%s", out)
	}
	if !strings.Contains(out, "**Table 2") {
		t.Error("markdown title missing")
	}
}

// TestDeterminismAcrossRuns: identical configuration and trace must yield
// bit-identical metrics (the whole simulator is seeded).
func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := integConfig()
	prof, _ := across.Profile("lun6")
	reqs, err := across.GenerateTrace(prof.Scale(0.003), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	a, err := across.Run(across.AcrossFTL, cfg, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := across.Run(across.AcrossFTL, cfg, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Errorf("counters differ across identical runs:\n%+v\n%+v", a.Counters, b.Counters)
	}
	if a.TotalIOTime() != b.TotalIOTime() {
		t.Errorf("latency sums differ: %v vs %v", a.TotalIOTime(), b.TotalIOTime())
	}
	if *a.Across != *b.Across {
		t.Errorf("across census differs: %+v vs %+v", a.Across, b.Across)
	}
}

package across_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd go-runs one of the repository's commands from the module root and
// returns its stdout. Build or runtime failures include the command's
// combined output in the test log.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %s: %v\nstdout:\n%s\nstderr:\n%s",
			strings.Join(args, " "), err, stdout.String(), stderr.String())
	}
	return stdout.String()
}

// TestAcrosssimSmoke runs the simulator end to end — synthetic profile, aged
// device, verification enabled — and checks the report contains the expected
// sections, including a clean verify line.
func TestAcrosssimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runCmd(t, "./cmd/acrosssim",
		"-profile", "lun1", "-scale", "0.002", "-check", "-audit-every", "500")
	for _, want := range []string{"device :", "trace  :", "scheme :", "latency:", "writes :", "erases :", "verify : clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTracegenRoundTrip generates a trace with tracegen and replays the file
// through acrosssim: the CSV writer, format auto-detection, parser, and
// replay engine all exercised as a user would.
func TestTracegenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	csv := runCmd(t, "./cmd/tracegen", "-profile", "lun2", "-scale", "0.002")
	if !strings.Contains(csv, ",W,") && !strings.Contains(csv, ",R,") {
		t.Fatalf("tracegen emitted no requests:\n%.400s", csv)
	}
	path := filepath.Join(t.TempDir(), "lun2.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "./cmd/acrosssim", "-trace", path, "-scheme", "FTL", "-check")
	if !strings.Contains(out, "verify : clean") {
		t.Errorf("replay of generated trace not verified clean:\n%s", out)
	}
}

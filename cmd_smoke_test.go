package across_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// runCmd go-runs one of the repository's commands from the module root and
// returns its stdout. Build or runtime failures include the command's
// combined output in the test log.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %s: %v\nstdout:\n%s\nstderr:\n%s",
			strings.Join(args, " "), err, stdout.String(), stderr.String())
	}
	return stdout.String()
}

// TestAcrosssimSmoke runs the simulator end to end — synthetic profile, aged
// device, verification enabled — and checks the report contains the expected
// sections, including a clean verify line.
func TestAcrosssimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runCmd(t, "./cmd/acrosssim",
		"-profile", "lun1", "-scale", "0.002", "-check", "-audit-every", "500")
	for _, want := range []string{"device :", "trace  :", "scheme :", "latency:", "writes :", "erases :", "verify : clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestAcrosssimScenarioSmoke drives the scenario engine through the CLI:
// generate a builtin scenario to a trace-v2 file, then replay the stored
// container with -scenario-in on another scheme — generation, encode, decode
// and replay exercised as a user would, with verification on.
func TestAcrosssimScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	path := filepath.Join(t.TempDir(), "burst.axt2")
	out := runCmd(t, "./cmd/acrosssim",
		"-scenario", "burst", "-scale", "0.002", "-scenario-out", path, "-check")
	for _, want := range []string{"scenario: burst", "cohort:", "tracev2 :", "verify : clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario run output missing %q:\n%s", want, out)
		}
	}
	replayed := runCmd(t, "./cmd/acrosssim",
		"-scenario-in", path, "-scheme", "FTL", "-check")
	if !strings.Contains(replayed, "scenario: burst") || !strings.Contains(replayed, "verify : clean") {
		t.Errorf("trace-v2 replay output wrong:\n%s", replayed)
	}
}

// TestAcrosssimMSRScenarioSmoke wires the MSR Cambridge fixture through the
// CLI's scenario path (the real-trace cohort input).
func TestAcrosssimMSRScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runCmd(t, "./cmd/acrosssim",
		"-scenario", "trace", "-trace", "internal/trace/testdata/msr_sample.csv",
		"-scale", "1", "-no-age", "-check")
	if !strings.Contains(out, "scenario: trace") || !strings.Contains(out, "verify : clean") {
		t.Errorf("MSR scenario output wrong:\n%s", out)
	}
}

// TestTracegenRoundTrip generates a trace with tracegen and replays the file
// through acrosssim: the CSV writer, format auto-detection, parser, and
// replay engine all exercised as a user would.
func TestTracegenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	csv := runCmd(t, "./cmd/tracegen", "-profile", "lun2", "-scale", "0.002")
	if !strings.Contains(csv, ",W,") && !strings.Contains(csv, ",R,") {
		t.Fatalf("tracegen emitted no requests:\n%.400s", csv)
	}
	path := filepath.Join(t.TempDir(), "lun2.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "./cmd/acrosssim", "-trace", path, "-scheme", "FTL", "-check")
	if !strings.Contains(out, "verify : clean") {
		t.Errorf("replay of generated trace not verified clean:\n%s", out)
	}
}

// TestAcrossdSmoke exercises the daemon as a process: build it, start it on
// an ephemeral port, submit a replay job over HTTP, poll it to completion,
// fetch the result, then SIGTERM and require a clean, graceful exit.
func TestAcrossdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "acrossd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/acrossd").CombinedOutput(); err != nil {
		t.Fatalf("building acrossd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store", filepath.Join(dir, "results"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The readiness line carries the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no readiness line: %v", sc.Err())
	}
	ready := sc.Text()
	fields := strings.Fields(ready)
	if len(fields) < 4 || !strings.Contains(ready, "listening on") {
		t.Fatalf("unexpected readiness line %q", ready)
	}
	base := "http://" + fields[3]
	// Keep draining stdout so the daemon never blocks on a full pipe, and
	// collect it for the shutdown assertions.
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		rest <- b.String()
	}()

	spec := `{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":0.001}`
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: code=%d err=%v status=%+v", resp.StatusCode, err, st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != "succeeded" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(base + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job finished %s", st.State)
		}
	}

	resp, err = http.Get(base + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		Result struct {
			Requests int64 `json:"requests"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || resp.StatusCode != http.StatusOK || doc.Result.Requests == 0 {
		t.Fatalf("result: code=%d err=%v body=%s", resp.StatusCode, err, body)
	}

	// Identical respec is answered from memory or store, not re-run.
	resp, err = http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Read stdout to EOF before Wait (which closes the pipe), so the
	// shutdown lines are not discarded.
	var tail string
	select {
	case tail = <-rest:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly: %v", err)
	}
	if !strings.Contains(tail, "drained") {
		t.Errorf("shutdown output missing drain message:\n%s", tail)
	}
}

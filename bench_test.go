package across

// One benchmark per table and figure of the paper, plus ablation benches
// for the design choices DESIGN.md calls out. Each benchmark regenerates
// its artifact end to end (trace synthesis, device aging, replay, report)
// on a small shape-preserving geometry, and reports the headline ratio of
// that artifact as a custom metric so `go test -bench . -benchmem` doubles
// as a regression harness for the reproduction itself.
//
// For paper-scale numbers use `go run ./cmd/experiments` (optionally -full).

import (
	"io"
	"testing"

	"across/internal/acrossftl"
	"across/internal/experiments"
	"across/internal/ftl"
	"across/internal/hostcache"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// benchSSD is the benchmark device: Table 1 timing and page geometry on a
// small array (4 chips, 256 MiB) so every bench iteration is sub-second.
func benchSSD() ssdconf.Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 128
	c.PagesPerBlock = 32
	return c
}

func benchExpConfig() experiments.Config {
	return experiments.Config{
		SSD:            benchSSD(),
		Scale:          0.004, // ~2.5-3.5k requests per lun
		Age:            true,
		CollectionSize: 12,
	}
}

// benchArtifact runs one experiment end to end per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSession(benchExpConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RunOne(id, s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Config regenerates Table 1 (configuration check).
func BenchmarkTable1Config(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkTable2TraceSpecs regenerates Table 2 (trace synthesis + stats).
func BenchmarkTable2TraceSpecs(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFig2AcrossRatioCollection regenerates Fig 2 (collection sweep).
func BenchmarkFig2AcrossRatioCollection(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFig4AcrossPenalty regenerates Fig 4 (baseline across-page cost).
func BenchmarkFig4AcrossPenalty(b *testing.B) { benchArtifact(b, "fig4") }

// BenchmarkFig8AcrossStats regenerates Fig 8 (across-page census).
func BenchmarkFig8AcrossStats(b *testing.B) { benchArtifact(b, "fig8") }

// BenchmarkFig9ResponseTime regenerates Fig 9 (three-scheme latencies).
func BenchmarkFig9ResponseTime(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkFig10FlashOps regenerates Fig 10 (flash op counts, Map/Data).
func BenchmarkFig10FlashOps(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkFig11EraseCount regenerates Fig 11 (endurance).
func BenchmarkFig11EraseCount(b *testing.B) { benchArtifact(b, "fig11") }

// BenchmarkFig12Overhead regenerates Fig 12 (space/DRAM overheads).
func BenchmarkFig12Overhead(b *testing.B) { benchArtifact(b, "fig12") }

// BenchmarkFig13PageSizeRatio regenerates Fig 13 (across ratio vs page size).
func BenchmarkFig13PageSizeRatio(b *testing.B) { benchArtifact(b, "fig13") }

// BenchmarkFig14PageSizeSweep regenerates Fig 14 (3 schemes x 3 page sizes).
func BenchmarkFig14PageSizeSweep(b *testing.B) { benchArtifact(b, "fig14") }

// benchTrace synthesises the shared ablation workload once.
func benchTrace(b *testing.B, conf ssdconf.Config) []trace.Request {
	b.Helper()
	p, err := workload.LunProfile("lun1")
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(p.Scale(0.004), conf.LogicalSectors())
	if err != nil {
		b.Fatal(err)
	}
	return reqs
}

// replayScheme ages and replays one pre-built scheme.
func replayScheme(b *testing.B, conf ssdconf.Config, s ftl.Scheme, kind sim.SchemeKind, reqs []trace.Request) *sim.Result {
	b.Helper()
	r := &sim.Runner{Conf: &conf, Kind: kind, Scheme: s}
	if err := r.Age(sim.DefaultAging()); err != nil {
		b.Fatal(err)
	}
	res, err := r.Replay(reqs)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationAMerge compares full Across-FTL against a variant with
// AMerge disabled (every conflicting update rolls the area back), isolating
// how much the merge policy contributes to the flash-write savings.
func BenchmarkAblationAMerge(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, variant := range []struct {
		name string
		opts acrossftl.Options
	}{
		{"merge-enabled", acrossftl.Options{}},
		{"rollback-only", acrossftl.Options{DisableAMerge: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var writes, erases int64
			for i := 0; i < b.N; i++ {
				s, err := acrossftl.NewWithOptions(&conf, variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				res := replayScheme(b, conf, s, sim.KindAcross, reqs)
				writes = res.Counters.FlashWrites()
				erases = res.Counters.Erases
			}
			b.ReportMetric(float64(writes), "flashwrites")
			b.ReportMetric(float64(erases), "erases")
		})
	}
}

// BenchmarkAblationAMTCache sweeps the DRAM-resident AMT translation-page
// budget: too small and across-area lookups start spilling to flash.
func BenchmarkAblationAMTCache(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, pages := range []int{2, 8, 64} {
		b.Run("pages-"+itoa(pages), func(b *testing.B) {
			var mapOps int64
			for i := 0; i < b.N; i++ {
				s, err := acrossftl.NewWithCache(&conf, pages)
				if err != nil {
					b.Fatal(err)
				}
				res := replayScheme(b, conf, s, sim.KindAcross, reqs)
				mapOps = res.Counters.MapReads + res.Counters.MapWrites
			}
			b.ReportMetric(float64(mapOps), "mapops")
		})
	}
}

// BenchmarkAblationGCVictim compares the greedy victim selection (the
// paper's SSDsim default) against FIFO on the baseline FTL.
func BenchmarkAblationGCVictim(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, variant := range []struct {
		name   string
		policy ftl.VictimPolicy
	}{
		{"greedy", ftl.VictimGreedy},
		{"fifo", ftl.VictimFIFO},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var erases, gcWrites int64
			for i := 0; i < b.N; i++ {
				s, err := ftl.NewBaseline(&conf)
				if err != nil {
					b.Fatal(err)
				}
				s.Al.SetVictimPolicy(variant.policy)
				res := replayScheme(b, conf, s, sim.KindFTL, reqs)
				erases = res.Counters.Erases
				gcWrites = res.Counters.GCWrites
			}
			b.ReportMetric(float64(erases), "erases")
			b.ReportMetric(float64(gcWrites), "gcwrites")
		})
	}
}

// BenchmarkAblationPartialGC compares unbounded collection bursts against
// partial GC (at most 2 victims per invocation) on the baseline FTL. The
// interesting output is the write-latency tail: partial GC trades a few
// extra invocations for far shorter stalls.
func BenchmarkAblationPartialGC(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, variant := range []struct {
		name       string
		maxVictims int
	}{
		{"burst", 0},
		{"partial-2", 2},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var p99, erases float64
			for i := 0; i < b.N; i++ {
				s, err := ftl.NewBaseline(&conf)
				if err != nil {
					b.Fatal(err)
				}
				s.Al.SetMaxVictimsPerGC(variant.maxVictims)
				res := replayScheme(b, conf, s, sim.KindFTL, reqs)
				p99 = res.WriteLat.P99()
				erases = float64(res.Counters.Erases)
			}
			b.ReportMetric(p99, "p99ms")
			b.ReportMetric(erases, "erases")
		})
	}
}

// BenchmarkAblationHostCache shows what a DRAM data buffer (the Table 1
// cache row) can and cannot do: flash reads shrink with cache size while
// flash writes — and therefore the paper's endurance results — stay put.
func BenchmarkAblationHostCache(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, pages := range []int{0, 512, 4096} {
		b.Run("pages-"+itoa(pages), func(b *testing.B) {
			var flashReads, flashWrites int64
			for i := 0; i < b.N; i++ {
				inner, err := ftl.NewBaseline(&conf)
				if err != nil {
					b.Fatal(err)
				}
				var scheme ftl.Scheme = inner
				if pages > 0 {
					scheme = hostcache.Wrap(inner, pages)
				}
				res := replayScheme(b, conf, scheme, sim.KindFTL, reqs)
				flashReads = res.Counters.DataReads
				flashWrites = res.Counters.DataWrites
			}
			b.ReportMetric(float64(flashReads), "flashreads")
			b.ReportMetric(float64(flashWrites), "flashwrites")
		})
	}
}

// BenchmarkAblationWearLeveling measures the endurance-uniformity gain (and
// allocation-scan cost) of picking least-worn free blocks.
func BenchmarkAblationWearLeveling(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, variant := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var spread, sd float64
			for i := 0; i < b.N; i++ {
				s, err := ftl.NewBaseline(&conf)
				if err != nil {
					b.Fatal(err)
				}
				s.Al.SetWearLeveling(variant.on)
				res := replayScheme(b, conf, s, sim.KindFTL, reqs)
				spread = float64(res.Wear.Max - res.Wear.Min)
				sd = res.Wear.StdDev
			}
			b.ReportMetric(spread, "wearspread")
			b.ReportMetric(sd, "wearsd")
		})
	}
}

// BenchmarkReplayThroughput measures raw simulator speed (requests/s) for
// each scheme, without the experiment-harness overhead.
func BenchmarkReplayThroughput(b *testing.B) {
	conf := benchSSD()
	reqs := benchTrace(b, conf)
	for _, kind := range sim.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			r, err := sim.NewRunner(kind, conf)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Age(sim.DefaultAging()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Replay(reqs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
